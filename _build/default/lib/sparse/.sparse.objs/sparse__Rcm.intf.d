lib/sparse/rcm.mli: Csr
