(** Compressed sparse row matrices (duplicates merged, columns sorted
    within each row). *)

type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows + 1 *)
  col_idx : int array; (* length nnz, ascending within a row *)
  values : float array;
}

val of_triplet : Triplet.t -> t
(** Build from a COO builder, merging duplicate entries (entries that
    cancel exactly are kept as explicit zeros only if produced by
    merging; pure zeros were never added). *)

val of_dense : Linalg.Mat.t -> t

val to_dense : t -> Linalg.Mat.t

val nnz : t -> int

val get : t -> int -> int -> float
(** Logarithmic lookup within a row; absent entries are 0. *)

val mul_vec : t -> Linalg.Vec.t -> Linalg.Vec.t

val mul_vec_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit
(** [mul_vec_into a x y] writes [A x] into [y] (no allocation). *)

val transpose : t -> t

val add : ?alpha:float -> ?beta:float -> t -> t -> t
(** [add ~alpha ~beta a b = alpha·a + beta·b] (defaults 1, 1). *)

val scale : float -> t -> t

val identity : int -> t

val is_symmetric : ?tol:float -> t -> bool

val permute_sym : t -> int array -> t
(** [permute_sym a perm] computes [P A Pᵀ] where the row [i] of the
    result is row [perm.(i)] of [a] (so [perm] lists old indices in
    new order). *)

val iter_row : t -> int -> (int -> float -> unit) -> unit

val bandwidth : t -> int
(** Maximum [|i − j|] over stored entries. *)

val profile : t -> int
(** Sum over rows of [i − min column index ≤ i] (the envelope size a
    skyline factorisation will fill). *)
