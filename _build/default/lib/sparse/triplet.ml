type t = {
  rows : int;
  cols : int;
  mutable is : int array;
  mutable js : int array;
  mutable xs : float array;
  mutable len : int;
}

let create rows cols =
  { rows; cols; is = Array.make 16 0; js = Array.make 16 0; xs = Array.make 16 0.0; len = 0 }

let rows t = t.rows

let cols t = t.cols

let nnz t = t.len

let grow t =
  let cap = Array.length t.is in
  if t.len = cap then begin
    let ncap = 2 * cap in
    let is = Array.make ncap 0 and js = Array.make ncap 0 and xs = Array.make ncap 0.0 in
    Array.blit t.is 0 is 0 t.len;
    Array.blit t.js 0 js 0 t.len;
    Array.blit t.xs 0 xs 0 t.len;
    t.is <- is;
    t.js <- js;
    t.xs <- xs
  end

let add t i j x =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg
      (Printf.sprintf "Triplet.add: (%d, %d) out of range for %d×%d" i j t.rows t.cols);
  if x <> 0.0 then begin
    grow t;
    t.is.(t.len) <- i;
    t.js.(t.len) <- j;
    t.xs.(t.len) <- x;
    t.len <- t.len + 1
  end

let add_sym t i j x =
  add t i j x;
  if i <> j then add t j i x

let iter t f =
  for k = 0 to t.len - 1 do
    f t.is.(k) t.js.(k) t.xs.(k)
  done

let of_dense m =
  let t = create m.Linalg.Mat.rows m.Linalg.Mat.cols in
  for i = 0 to m.Linalg.Mat.rows - 1 do
    for j = 0 to m.Linalg.Mat.cols - 1 do
      let x = Linalg.Mat.get m i j in
      if x <> 0.0 then add t i j x
    done
  done;
  t
