exception Singular of int

module type FIELD = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val abs : t -> float
end

module type SOLVER = sig
  type elt
  type t

  val factor :
    ?pivot_tol:float -> n:int -> first:int array -> get:(int -> int -> elt) -> unit -> t

  val dim : t -> int
  val solve : t -> elt array -> elt array
  val solve_lower : t -> elt array -> elt array
  val solve_lower_t : t -> elt array -> elt array
  val d : t -> elt array
  val fill : t -> int
end

module Make (F : FIELD) = struct
  type elt = F.t

  type t = {
    n : int;
    first : int array; (* first envelope column of each row *)
    rows : F.t array array; (* rows.(i) holds L(i, first.(i) .. i-1) *)
    diag : F.t array; (* D *)
  }

  let dim t = t.n

  let d t = Array.copy t.diag

  let fill t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.rows

  (* Row-wise envelope LDLᵀ:
       L(i,j) = (A(i,j) - Σ_{k<j} L(i,k) D(k) L(j,k)) / D(j)
       D(i)   = A(i,i) - Σ_{k<i} L(i,k)² D(k)
     with k restricted to max(first.(i), first.(j)). *)
  let factor ?(pivot_tol = 1e-14) ~n ~first ~get () =
    let rows = Array.init n (fun i -> Array.make (i - first.(i)) F.zero) in
    let diag = Array.make n F.zero in
    let dmax = ref 0.0 in
    for i = 0 to n - 1 do
      dmax := Float.max !dmax (F.abs (get i i))
    done;
    (* relative to the diagonal scale so femto-scale matrices factor *)
    let breakdown = pivot_tol *. !dmax in
    for i = 0 to n - 1 do
      let fi = first.(i) in
      let ri = rows.(i) in
      for j = fi to i - 1 do
        let fj = first.(j) in
        let k0 = max fi fj in
        let s = ref (get i j) in
        for k = k0 to j - 1 do
          s := F.sub !s (F.mul (F.mul ri.(k - fi) diag.(k)) rows.(j).(k - fj))
        done;
        ri.(j - fi) <- F.div !s diag.(j)
      done;
      let s = ref (get i i) in
      for k = fi to i - 1 do
        let lik = ri.(k - fi) in
        s := F.sub !s (F.mul (F.mul lik lik) diag.(k))
      done;
      if F.abs !s <= breakdown then raise (Singular i);
      diag.(i) <- !s
    done;
    { n; first; rows; diag }

  let solve_lower t b =
    assert (Array.length b = t.n);
    let y = Array.copy b in
    for i = 0 to t.n - 1 do
      let fi = t.first.(i) in
      let ri = t.rows.(i) in
      let s = ref y.(i) in
      for k = fi to i - 1 do
        s := F.sub !s (F.mul ri.(k - fi) y.(k))
      done;
      y.(i) <- !s
    done;
    y

  let solve_lower_t t b =
    assert (Array.length b = t.n);
    let y = Array.copy b in
    for i = t.n - 1 downto 0 do
      let yi = y.(i) in
      let fi = t.first.(i) in
      let ri = t.rows.(i) in
      for k = fi to i - 1 do
        y.(k) <- F.sub y.(k) (F.mul ri.(k - fi) yi)
      done
    done;
    y

  let solve t b =
    let y = solve_lower t b in
    for i = 0 to t.n - 1 do
      y.(i) <- F.div y.(i) t.diag.(i)
    done;
    solve_lower_t t y
end

module Real = Make (struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let abs = Float.abs
end)

module Complex_sym = Make (struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let abs = Complex.norm
end)

let envelope_of_csr a =
  let n = a.Csr.rows in
  let first = Array.init n (fun i -> i) in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j _ ->
        if j < first.(i) then first.(i) <- j;
        (* symmetrise the pattern: an upper entry (i, j), j > i, puts
           column i into row j's envelope *)
        if j > i && i < first.(j) then first.(j) <- i)
  done;
  first

let factor_real ?pivot_tol a =
  assert (a.Csr.rows = a.Csr.cols);
  let first = envelope_of_csr a in
  Real.factor ?pivot_tol ~n:a.Csr.rows ~first ~get:(fun i j -> Csr.get a i j) ()

let factor_complex ?pivot_tol s g c =
  assert (g.Csr.rows = g.Csr.cols && c.Csr.rows = c.Csr.cols && g.Csr.rows = c.Csr.rows);
  let fg = envelope_of_csr g and fc = envelope_of_csr c in
  let n = g.Csr.rows in
  let first = Array.init n (fun i -> min fg.(i) fc.(i)) in
  let get i j =
    Complex.add
      { Complex.re = Csr.get g i j; im = 0.0 }
      (Complex.mul s { Complex.re = Csr.get c i j; im = 0.0 })
  in
  Complex_sym.factor ?pivot_tol ~n ~first ~get ()
