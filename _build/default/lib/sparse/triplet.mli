(** Coordinate-format (COO) sparse-matrix builder.

    The natural target of MNA stamping: entries may be added in any
    order and duplicates accumulate. Convert to {!Csr.t} for
    computation. *)

type t

val create : int -> int -> t
(** [create rows cols] — an empty builder. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Number of raw (pre-merge) entries. *)

val add : t -> int -> int -> float -> unit
(** [add t i j x] accumulates [x] at (i, j). Zero additions are
    dropped. Raises [Invalid_argument] on out-of-range indices. *)

val add_sym : t -> int -> int -> float -> unit
(** [add_sym t i j x] adds at (i, j) and, when [i ≠ j], at (j, i). *)

val iter : t -> (int -> int -> float -> unit) -> unit

val of_dense : Linalg.Mat.t -> t
