examples/compare_methods.ml: Array Circuit Float Format Linalg List Printf Simulate Sympvl
