examples/interconnect_crosstalk.mli:
