examples/quickstart.ml: Array Circuit Complex Float Format Linalg Printf Simulate Sympvl
