examples/peec_twoport.ml: Array Circuit Complex Float Format Linalg Printf Simulate Sympvl
