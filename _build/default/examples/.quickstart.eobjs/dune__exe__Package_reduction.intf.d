examples/package_reduction.mli:
