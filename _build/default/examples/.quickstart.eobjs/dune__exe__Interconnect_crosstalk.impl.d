examples/interconnect_crosstalk.ml: Array Circuit Float Format List Printf Simulate Sympvl Synth Sys
