examples/compare_methods.mli:
