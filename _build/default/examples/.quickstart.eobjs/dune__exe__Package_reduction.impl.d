examples/package_reduction.ml: Array Circuit Float Format Linalg List Printf Simulate String Sympvl Sys
