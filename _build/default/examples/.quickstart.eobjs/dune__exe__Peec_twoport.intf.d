examples/peec_twoport.mli:
