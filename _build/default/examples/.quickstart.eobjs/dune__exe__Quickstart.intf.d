examples/quickstart.mli:
