(* The paper's third example (Section 7.3, Figure 5): an extracted
   crosstalk RC network is reduced with SyMPVL, synthesized back into
   a small RC circuit, and simulated in the time domain against the
   full netlist. The reduced circuit is orders of magnitude cheaper at
   indistinguishable accuracy.

   Run with:  dune exec examples/interconnect_crosstalk.exe -- [wires] [sections] *)

let () =
  let wires = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6 in
  let sections = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 30 in
  let make_bus () =
    Circuit.Generators.coupled_rc_bus ~terminate:200.0 ~coupling_span:2 ~wires ~sections ()
  in
  let nl = make_bus () in
  let stats = Circuit.Netlist.stats nl in
  Printf.printf "Interconnect: %s\n"
    (Format.asprintf "%a" Circuit.Netlist.pp_stats stats);

  (* reduce the p-port RC network *)
  let order = 4 * wires in
  let mna = Circuit.Mna.assemble_rc nl in
  let model = Sympvl.Reduce.mna ~order mna in
  Printf.printf "SyMPVL: order %d for %d ports (definite=%b, certified passive=%b)\n"
    model.Sympvl.Model.order wires model.Sympvl.Model.definite
    (Sympvl.Stability.passivity_certificate model = Sympvl.Stability.Certified);

  (* synthesize an equivalent small RC circuit *)
  let names = Array.init wires (fun w -> Printf.sprintf "port%d" w) in
  let syn, sst = Synth.Multiport.synthesize ~port_names:names model in
  Printf.printf
    "synthesis: %d nodes, %d R, %d C (%d negative-valued) vs full %d nodes, %d R, %d C\n\n"
    sst.Synth.Multiport.nodes sst.Synth.Multiport.resistors sst.Synth.Multiport.capacitors
    sst.Synth.Multiport.negative_elements stats.Circuit.Netlist.nodes
    stats.Circuit.Netlist.resistors stats.Circuit.Netlist.capacitors;

  (* time-domain comparison: aggressor ramp on wire 0, victim = wire 1 *)
  let drive = Circuit.Waveform.ramp ~rise:3e-10 2e-3 in
  let opts = Simulate.Transient.default ~dt:1e-11 ~t_stop:6e-9 in
  let full = make_bus () in
  let agg = Circuit.Netlist.node full "w0s0" in
  let vic = Circuit.Netlist.node full "w1s0" in
  Circuit.Netlist.add_current_source full 0 agg drive;
  let t0 = Sys.time () in
  let r_full = Simulate.Transient.run ~opts ~observe:[ agg; vic ] full in
  let t_full = Sys.time () -. t0 in
  let agg_s = Circuit.Netlist.node syn "port0" in
  let vic_s = Circuit.Netlist.node syn "port1" in
  Circuit.Netlist.add_current_source syn 0 agg_s drive;
  let t0 = Sys.time () in
  let r_syn = Simulate.Transient.run ~opts ~observe:[ agg_s; vic_s ] syn in
  let t_syn = Sys.time () -. t0 in

  print_endline "     t [s]      v_aggressor (full / reduced)   v_victim (full / reduced)";
  let n = r_full.Simulate.Transient.steps in
  let get r idx k = snd (List.nth r.Simulate.Transient.voltages idx) |> fun a -> a.(k) in
  List.iter
    (fun frac ->
      let k = n * frac / 100 in
      Printf.printf "  %9.3e     %10.6f / %10.6f      %10.6f / %10.6f\n"
        r_full.Simulate.Transient.times.(k) (get r_full 0 k) (get r_syn 0 k)
        (get r_full 1 k) (get r_syn 1 k))
    [ 5; 10; 20; 30; 50; 70; 100 ];
  Printf.printf "\nmax waveform deviation: %.3e V\n"
    (Simulate.Transient.max_deviation r_full r_syn);
  Printf.printf "CPU time: full %.3f s (%d unknowns) vs reduced %.3f s (%d nodes) -> speedup %.1fx\n"
    t_full stats.Circuit.Netlist.nodes t_syn sst.Synth.Multiport.nodes
    (t_full /. Float.max t_syn 1e-9)
