(* The paper's second example (Section 7.2, Figures 3-4): a multi-pin
   package modelled as an RLC network, characterised as a 16-port and
   reduced with SyMPVL at several orders. The printed transfer is the
   voltage ratio |Z(int,ext)/Z(ext,ext)| between the external and
   internal terminals of pin 1 (Fig. 3) and between pin-1 external and
   pin-2 internal (Fig. 4, the coupling path).

   Run with:  dune exec examples/package_reduction.exe -- [pins] [sections] *)

let () =
  let pins = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 16 in
  let sections = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let nl = Circuit.Generators.package_model ~pins ~signal_pins:8 ~sections () in
  let mna = Circuit.Mna.assemble nl in
  Printf.printf "Package model: %s\n"
    (Format.asprintf "%a" Circuit.Netlist.pp_stats (Circuit.Netlist.stats nl));
  Printf.printf "general RLC pencil: %d unknowns, p = %d ports\n\n" mna.Circuit.Mna.n
    (Array.length mna.Circuit.Mna.port_names);

  let band = (1e7, 2e10) in
  let orders = [ 48; 64; 80 ] in
  let models =
    List.map
      (fun order ->
        let opts =
          { (Sympvl.Reduce.default ~order) with Sympvl.Reduce.band = Some band }
        in
        (order, Sympvl.Reduce.mna ~opts ~order mna))
      orders
  in
  List.iter
    (fun (order, model) ->
      Printf.printf
        "order %d: definite=%b deflations=%d look-ahead=%d stable=%b\n" order
        model.Sympvl.Model.definite model.Sympvl.Model.deflations
        model.Sympvl.Model.look_ahead_steps
        (Sympvl.Stability.is_stable model))
    models;

  (* pin-1 external is port 0, pin-1 internal port 1, pin-2 internal
     port 3 (ports alternate ext/int per signal pin) *)
  let transfer z num den =
    Linalg.Cx.abs Linalg.Cx.(Linalg.Cmat.get z num 0 /: Linalg.Cmat.get z den 0)
  in
  List.iter
    (fun (num, what) ->
      Printf.printf "\n%s\n" what;
      Printf.printf "      f [Hz]      exact      %s\n"
        (String.concat "      "
           (List.map (fun (o, _) -> Printf.sprintf "n=%d" o) models));
      Array.iter
        (fun f ->
          let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
          let ze = Simulate.Ac.z_at mna s in
          Printf.printf "  %10.3e   %8.5f" f (transfer ze num 0);
          List.iter
            (fun (_, model) ->
              let zm = Sympvl.Model.eval model s in
              Printf.printf "   %8.5f" (transfer zm num 0))
            models;
          print_newline ())
        (Simulate.Ac.log_freqs ~points:10 1e8 2e10))
    [ (1, "Fig. 3: pin-1 ext -> pin-1 int"); (3, "Fig. 4: pin-1 ext -> pin-2 int") ]
