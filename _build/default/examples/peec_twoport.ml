(* The paper's first example (Section 7.1, Figures 1-2): an LC circuit
   from PEEC-style modeling, treated as a generalised two-port with
   Z(s) = Bᵀ(G + s²C)⁻¹B, B = [a l].  G is singular (no DC path to
   ground), so a frequency shift s₀ is used exactly as in eq. (26).

   Run with:  dune exec examples/peec_twoport.exe *)

let () =
  let segments = 60 in
  let nl, out_inductor = Circuit.Generators.peec_mesh ~segments () in
  let mna = Circuit.Mna.assemble_lc nl in
  (* generalised second port: the current through a chosen inductor,
     observed through l = Aˡᵀℒ⁻¹b (paper Section 7.1) *)
  let w = Circuit.Mna.observe_inductor_current nl mna out_inductor in
  let mna = Circuit.Mna.append_output_column mna w "i_out" in
  Printf.printf "PEEC-style LC mesh: %s\n"
    (Format.asprintf "%a" Circuit.Netlist.pp_stats (Circuit.Netlist.stats nl));
  Printf.printf "pencil in s²: %d unknowns, 2 observation columns\n\n" mna.Circuit.Mna.n;

  let band = (1e8, 5e9) in
  let order = 30 in
  let opts = { (Sympvl.Reduce.default ~order) with Sympvl.Reduce.band = Some band } in
  let model = Sympvl.Reduce.mna ~opts ~order mna in
  Printf.printf "SyMPVL: order %d, shift s0 = %.3e (s² domain), definite = %b\n\n"
    model.Sympvl.Model.order model.Sympvl.Model.shift model.Sympvl.Model.definite;

  (* input impedance Z_in = −s·Z11 and transfer α = −Z21 (paper §7.1) *)
  print_endline "      f [Hz]        |Zin| exact     |Zin| n=30      rel.err";
  let freqs = Simulate.Ac.log_freqs ~points:13 1e8 5e9 in
  Array.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let ze = Simulate.Ac.z_at mna s in
      let zm = Sympvl.Model.eval model s in
      let zin_e = Linalg.Cx.(s *: Linalg.Cmat.get ze 0 0) in
      let zin_m = Linalg.Cx.(s *: Linalg.Cmat.get zm 0 0) in
      let err = Linalg.Cx.abs (Complex.sub zin_e zin_m) /. Linalg.Cx.abs zin_e in
      Printf.printf "  %10.4e   %12.6g   %12.6g   %.2e\n" f (Linalg.Cx.abs zin_e)
        (Linalg.Cx.abs zin_m) err)
    freqs;

  (* moment matching in the shifted s² variable *)
  let matched = Sympvl.Moments.matched_count ~rtol:1e-5 model mna in
  Printf.printf "\nmatched matrix moments about the shift: %d (guarantee 2*floor(n/p) = %d)\n"
    matched
    (2 * (order / 2))
