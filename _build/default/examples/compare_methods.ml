(* Algorithm comparison on one workload: SyMPVL vs its relatives.

   The paper positions SyMPVL against (a) AWE-style explicit moment
   matching [13,14], which is numerically limited to low orders,
   (b) the general two-sided MPVL [6], which computes the same
   matrix-Padé approximant at roughly twice the work, and (c) a
   block-Arnoldi congruence projection in the spirit of [16].

   Run with:  dune exec examples/compare_methods.exe *)

let () =
  let nl =
    Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires:4 ~sections:25 ()
  in
  let mna = Circuit.Mna.assemble_rc nl in
  Printf.printf "workload: %s (p = 4)\n\n"
    (Format.asprintf "%a" Circuit.Netlist.pp_stats (Circuit.Netlist.stats nl));
  let freqs = Simulate.Ac.log_freqs ~points:25 1e6 5e9 in
  let sw = Simulate.Ac.sweep mna freqs in
  let err_of eval = Simulate.Ac.max_rel_error sw (Simulate.Ac.model_sweep eval freqs) in
  print_endline
    "order | SyMPVL       MPVL         Arnoldi      AWE (port 0, scalar)";
  List.iter
    (fun order ->
      let sympvl = Sympvl.Reduce.mna ~order mna in
      let mpvl = Sympvl.Mpvl.reduce ~order mna in
      let arnoldi = Sympvl.Arnoldi.reduce ~order mna in
      let e1 = err_of (Sympvl.Model.eval sympvl) in
      let e2 = err_of (Sympvl.Mpvl.eval mpvl) in
      let e3 = err_of (Sympvl.Arnoldi.eval arnoldi) in
      (* AWE is scalar: compare its entry (0,0) only *)
      let e4 =
        match Sympvl.Awe.build ~order:(order / 4) ~port:0 mna with
        | awe ->
          let worst = ref 0.0 in
          Array.iteri
            (fun k f ->
              let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
              let ze = Linalg.Cmat.get sw.Simulate.Ac.z.(k) 0 0 in
              let za = Sympvl.Awe.eval awe s in
              worst :=
                Float.max !worst (Linalg.Cx.abs Linalg.Cx.(ze -: za) /. Linalg.Cx.abs ze))
            freqs;
          Printf.sprintf "%.1e (q=%d)" !worst (order / 4)
        | exception Sympvl.Awe.Breakdown msg -> "breakdown: " ^ msg
      in
      Printf.printf "%5d | %.3e    %.3e    %.3e    %s\n" order e1 e2 e3 e4)
    [ 8; 16; 24; 32 ];
  print_endline
    "\nNotes: SyMPVL and MPVL compute the same matrix-Padé approximant on\n\
     symmetric input (SyMPVL at about half the cost); the congruence\n\
     projection coincides too in the symmetric definite case. AWE's\n\
     explicit moments stall around q = 8-10 regardless of the budget —\n\
     the instability that motivated the Lanczos-based family."
