(* Quickstart: reduce a small RC interconnect with SyMPVL and compare
   the reduced model against exact AC analysis.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* a 40-section RC line with ports at both ends, terminated so that
     the conductance matrix is nonsingular (expansion about s = 0,
     provably stable and passive — paper Section 5) *)
  let nl = Circuit.Generators.rc_line ~sections:40 () in
  let far_end = Circuit.Netlist.node nl "n40" in
  Circuit.Netlist.add_resistor nl far_end 0 75.0;
  let mna = Circuit.Mna.assemble_rc nl in
  Printf.printf "Circuit: %s\n"
    (Format.asprintf "%a" Circuit.Netlist.pp_stats (Circuit.Netlist.stats nl));
  Printf.printf "MNA pencil: %d unknowns, %d ports\n\n" mna.Circuit.Mna.n
    (Array.length mna.Circuit.Mna.port_names);

  (* SyMPVL reduction to order 10 *)
  let order = 10 in
  let model = Sympvl.Reduce.mna ~order mna in
  Printf.printf "SyMPVL model: order %d, p = %d, definite = %b\n" model.Sympvl.Model.order
    model.Sympvl.Model.p model.Sympvl.Model.definite;

  (* moment matching: the matrix-Padé property guarantees 2⌊n/p⌋ *)
  let matched = Sympvl.Moments.matched_count ~rtol:1e-6 model mna in
  Printf.printf "matched moments: %d (guaranteed: %d)\n" matched (2 * (order / 2));

  (* stability / passivity certificates *)
  Printf.printf "stable: %b\n" (Sympvl.Stability.is_stable model);
  (match Sympvl.Stability.passivity_certificate model with
  | Sympvl.Stability.Certified -> print_endline "passivity: certified (T >= 0, J = I)"
  | Sympvl.Stability.Indefinite_t x -> Printf.printf "passivity: T indefinite (%g)\n" x
  | Sympvl.Stability.Not_applicable -> print_endline "passivity: no certificate");

  (* compare against exact AC analysis across five decades *)
  print_endline "\n      f [Hz]      |Z11| exact    |Z11| reduced   rel.err";
  Array.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z_exact = Linalg.Cmat.get (Simulate.Ac.z_at mna s) 0 0 in
      let z_model = Linalg.Cmat.get (Sympvl.Model.eval model s) 0 0 in
      let err =
        Linalg.Cx.abs (Complex.sub z_exact z_model) /. Linalg.Cx.abs z_exact
      in
      Printf.printf "  %10.3e   %12.6g   %12.6g   %.2e\n" f (Linalg.Cx.abs z_exact)
        (Linalg.Cx.abs z_model) err)
    [| 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 |];

  (* the poles of the reduced model (all on the negative real axis) *)
  print_endline "\nreduced-model poles (rad/s):";
  Array.iter
    (fun pole -> Printf.printf "  %+.6e %+.3ei\n" pole.Complex.re pole.Complex.im)
    (Sympvl.Model.poles model)
