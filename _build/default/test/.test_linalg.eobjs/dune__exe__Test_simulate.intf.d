test/test_simulate.mli:
