test/test_extensions.ml: Alcotest Array Circuit Complex Float Linalg List Printf Simulate Sparse Sympvl Synth
