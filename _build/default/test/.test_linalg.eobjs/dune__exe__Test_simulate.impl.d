test/test_simulate.ml: Alcotest Array Circuit Float Linalg List Printf Simulate Sparse Sympvl
