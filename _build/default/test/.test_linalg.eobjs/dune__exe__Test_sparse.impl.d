test/test_sparse.ml: Alcotest Array Complex Float Fun Linalg List Printf QCheck QCheck_alcotest Sparse
