test/test_baselines.ml: Alcotest Array Circuit Complex Float Linalg List Printf Sparse Sympvl
