test/test_circuit.ml: Alcotest Array Circuit Complex Float Linalg List QCheck QCheck_alcotest Sparse String
