test/test_synth.ml: Alcotest Array Circuit Float Linalg List Printf Simulate Sympvl Synth
