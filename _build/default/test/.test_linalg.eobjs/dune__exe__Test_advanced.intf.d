test/test_advanced.mli:
