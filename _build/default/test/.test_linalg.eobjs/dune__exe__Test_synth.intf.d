test/test_synth.mli:
