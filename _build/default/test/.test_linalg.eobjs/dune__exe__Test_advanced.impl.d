test/test_advanced.ml: Alcotest Array Circuit Complex Float Linalg List Printf Simulate Sympvl
