test/test_integration.ml: Alcotest Array Circuit Filename Float Linalg List Printf QCheck QCheck_alcotest Simulate Sparse Sympvl Synth Sys
