test/test_linalg.ml: Alcotest Array Complex Float Fun Linalg List Printf QCheck QCheck_alcotest
