test/test_sympvl.ml: Alcotest Array Circuit Complex Float Linalg List Printf QCheck QCheck_alcotest Sparse Sympvl
