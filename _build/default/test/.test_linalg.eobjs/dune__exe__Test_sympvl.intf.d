test/test_sympvl.mli:
