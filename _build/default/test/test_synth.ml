(* Tests for reduced-circuit synthesis: Foster scalar RC form and the
   multiport congruence realisation, validated in both frequency and
   time domain against the models they realise. *)

module Model = Sympvl.Model
module Reduce = Sympvl.Reduce

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

let terminated_bus wires sections =
  Circuit.Generators.coupled_rc_bus ~terminate:120.0 ~wires ~sections ()

(* ------------------------------------------------------------------ *)
(* Foster                                                             *)

let scalar_model () =
  let nl = terminated_bus 3 8 in
  let m = Circuit.Mna.assemble_rc nl in
  (Reduce.scalar ~order:8 ~port:0 m, m)

let test_foster_matches_model () =
  let model, _ = scalar_model () in
  let nl, st = Synth.Foster.synthesize model in
  Alcotest.(check bool) "has RC pairs" true (st.Synth.Foster.capacitors >= 6);
  let mna = Circuit.Mna.assemble_rc nl in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z_model = Linalg.Cmat.get (Model.eval model s) 0 0 in
      let z_circuit = Linalg.Cmat.get (Simulate.Ac.z_at mna s) 0 0 in
      checkf (Printf.sprintf "foster at %g Hz" f) ~tol:1e-6 0.0
        (Linalg.Cx.abs Linalg.Cx.(z_model -: z_circuit) /. Linalg.Cx.abs z_model))
    [ 1e5; 1e7; 1e9; 1e10 ]

let test_foster_matches_original_circuit () =
  let model, m = scalar_model () in
  let nl, _ = Synth.Foster.synthesize model in
  let mna = Circuit.Mna.assemble_rc nl in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e8) in
  let z_full = Linalg.Cmat.get (Simulate.Ac.z_at m s) 0 0 in
  let z_syn = Linalg.Cmat.get (Simulate.Ac.z_at mna s) 0 0 in
  checkf "foster ≈ original" ~tol:1e-4 0.0
    (Linalg.Cx.abs Linalg.Cx.(z_full -: z_syn) /. Linalg.Cx.abs z_full)

let test_foster_rejects_multiport () =
  let nl = terminated_bus 2 4 in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:6 m in
  Alcotest.(check bool) "rejects p=2" true
    (try
       ignore (Synth.Foster.synthesize model);
       false
     with Synth.Foster.Not_scalar_rc -> true)

(* ------------------------------------------------------------------ *)
(* Multiport                                                          *)

let test_multiport_matches_model () =
  let nl = terminated_bus 3 10 in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:12 m in
  let names = Array.init 3 (fun i -> Printf.sprintf "p%d" i) in
  let syn, st = Synth.Multiport.synthesize ~port_names:names model in
  Alcotest.(check int) "nodes = order" model.Model.order st.Synth.Multiport.nodes;
  let mna = Circuit.Mna.assemble_rc syn in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z_model = Model.eval model s in
      let z_circuit = Simulate.Ac.z_at mna s in
      checkf (Printf.sprintf "multiport at %g Hz" f) ~tol:1e-6 0.0
        (Linalg.Cmat.dist_max z_model z_circuit /. Linalg.Cmat.max_abs z_model))
    [ 1e5; 1e7; 1e9; 1e10 ]

let test_multiport_much_smaller () =
  let nl = terminated_bus 4 20 in
  let full_stats = Circuit.Netlist.stats nl in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:12 m in
  let names = Array.init 4 (fun i -> Printf.sprintf "p%d" i) in
  let _, st = Synth.Multiport.synthesize ~port_names:names model in
  Alcotest.(check bool)
    (Printf.sprintf "nodes %d << %d" st.Synth.Multiport.nodes full_stats.Circuit.Netlist.nodes)
    true
    (st.Synth.Multiport.nodes * 4 < full_stats.Circuit.Netlist.nodes)

let test_multiport_transient_against_full () =
  (* the Fig.-5 shape in miniature: full bus vs synthesized circuit
     under a ramp, waveforms must coincide *)
  let wires = 3 and sections = 10 in
  let drive = Circuit.Waveform.ramp ~rise:2e-10 1e-3 in
  let full = terminated_bus wires sections in
  let in0 = Circuit.Netlist.node full "w0s0" in
  let in2 = Circuit.Netlist.node full "w2s0" in
  Circuit.Netlist.add_current_source full 0 in0 drive;
  let opts = Simulate.Transient.default ~dt:5e-12 ~t_stop:3e-9 in
  let r_full = Simulate.Transient.run ~opts ~observe:[ in0; in2 ] full in
  let m = Circuit.Mna.assemble_rc (terminated_bus wires sections) in
  let model = Reduce.mna ~order:15 m in
  let names = Array.init wires (fun i -> Printf.sprintf "p%d" i) in
  let syn, _ = Synth.Multiport.synthesize ~port_names:names model in
  let p0 = Circuit.Netlist.node syn "p0" in
  let p2 = Circuit.Netlist.node syn "p2" in
  Circuit.Netlist.add_current_source syn 0 p0 drive;
  let r_syn = Simulate.Transient.run ~opts ~observe:[ p0; p2 ] syn in
  let dev = Simulate.Transient.max_deviation r_full r_syn in
  let scale = 1e-3 *. 120.0 in
  Alcotest.(check bool)
    (Printf.sprintf "transient dev %.2e" dev)
    true
    (dev < 2e-3 *. scale)

let test_multiport_negative_elements_reported () =
  (* negative elements are expected in general; the count must at
     least be consistent with the netlist *)
  let nl = terminated_bus 2 8 in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:8 m in
  let syn, st =
    Synth.Multiport.synthesize ~port_names:[| "a"; "b" |] model
  in
  let negatives =
    List.length
      (List.filter
         (function
           | Circuit.Netlist.Resistor { ohms; _ } -> ohms < 0.0
           | Circuit.Netlist.Capacitor { farads; _ } -> farads < 0.0
           | _ -> false)
         (Circuit.Netlist.elements syn))
  in
  Alcotest.(check int) "negative count consistent" negatives
    st.Synth.Multiport.negative_elements;
  Alcotest.(check bool) "positivity flag consistent" true
    (Circuit.Netlist.all_values_positive syn = (negatives = 0))

let () =
  Alcotest.run "synth"
    [
      ( "foster",
        [
          Alcotest.test_case "matches model" `Quick test_foster_matches_model;
          Alcotest.test_case "matches original" `Quick test_foster_matches_original_circuit;
          Alcotest.test_case "rejects multiport" `Quick test_foster_rejects_multiport;
        ] );
      ( "multiport",
        [
          Alcotest.test_case "matches model" `Quick test_multiport_matches_model;
          Alcotest.test_case "much smaller" `Quick test_multiport_much_smaller;
          Alcotest.test_case "transient vs full" `Quick test_multiport_transient_against_full;
          Alcotest.test_case "negative elements" `Quick test_multiport_negative_elements_reported;
        ] );
    ]
