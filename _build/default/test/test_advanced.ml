(* Tests for the advanced layer: subcircuit expansion, multipoint
   rational Krylov, balanced truncation, analytic time responses,
   and the rc_grid workload. *)

module Model = Sympvl.Model
module Reduce = Sympvl.Reduce
module Arnoldi = Sympvl.Arnoldi
module Btruncation = Sympvl.Btruncation
module Postprocess = Sympvl.Postprocess

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* subcircuits                                                        *)

let test_subckt_expansion () =
  let text =
    "* two RC sections as a subcircuit\n\
     .subckt rcsec a b\n\
     R1 a mid 1k\n\
     C1 mid 0 1p\n\
     R2 mid b 1k\n\
     .ends\n\
     X1 in n1 rcsec\n\
     X2 n1 out rcsec\n\
     R9 out 0 500\n\
     .port pin in\n\
     .port pout out\n"
  in
  let nl = Circuit.Parser.parse_string text in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "resistors" 5 s.Circuit.Netlist.resistors;
  Alcotest.(check int) "capacitors" 2 s.Circuit.Netlist.capacitors;
  (* instances have private mid nodes: in, n1, out, X1.mid, X2.mid *)
  Alcotest.(check int) "nodes" 5 s.Circuit.Netlist.nodes;
  (* electrically: R(in→n1) = 2k via X1 — DC impedance from pin is
     2k + 2k + 500 = 4.5k *)
  let mna = Circuit.Mna.assemble_rc nl in
  let z = Simulate.Ac.z_at mna (Linalg.Cx.re 0.0) in
  checkf "dc z11" ~tol:1e-6 4500.0 (Linalg.Cmat.get z 0 0).Complex.re

let test_subckt_nested () =
  let text =
    ".subckt leaf a b\n\
     R1 a b 100\n\
     .ends\n\
     .subckt pair a b\n\
     X1 a m leaf\n\
     X2 m b leaf\n\
     .ends\n\
     X0 in 0 pair\n\
     .port p in\n"
  in
  let nl = Circuit.Parser.parse_string text in
  let mna = Circuit.Mna.assemble_rc nl in
  let z = Simulate.Ac.z_at mna (Linalg.Cx.re 0.0) in
  checkf "nested dc" ~tol:1e-9 200.0 (Linalg.Cmat.get z 0 0).Complex.re

let test_subckt_mutual_inside () =
  let text =
    ".subckt coupled a b\n\
     L1 a 0 1n\n\
     L2 b 0 1n\n\
     K1 L1 L2 0.5\n\
     .ends\n\
     X1 p q coupled\n\
     .port pp p\n"
  in
  let nl = Circuit.Parser.parse_string text in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "inductors" 2 s.Circuit.Netlist.inductors_;
  Alcotest.(check int) "mutuals" 1 s.Circuit.Netlist.mutuals

let test_subckt_errors () =
  let check_raises text =
    try
      ignore (Circuit.Parser.parse_string text);
      false
    with Circuit.Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "unknown subckt" true (check_raises "X1 a b nosuch\n");
  Alcotest.(check bool) "pin mismatch" true
    (check_raises ".subckt s a b\nR1 a b 1\n.ends\nX1 n1 s\n");
  Alcotest.(check bool) "missing .ends" true (check_raises ".subckt s a b\nR1 a b 1\n");
  Alcotest.(check bool) "recursion capped" true
    (check_raises ".subckt s a b\nX1 a b s\n.ends\nX0 p q s\n")

(* ------------------------------------------------------------------ *)
(* multipoint rational Krylov                                         *)

let test_multipoint_beats_single_wideband () =
  (* terminated bus over 4 decades: same total order, two expansion
     points cover the band better than one *)
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires:2 ~sections:40 () in
  let m = Circuit.Mna.assemble_rc nl in
  let freqs = Simulate.Ac.log_freqs ~points:40 1e6 2e10 in
  let sw = Simulate.Ac.sweep m freqs in
  let s_lo = Arnoldi.shift_of_hz m 1e7 and s_hi = Arnoldi.shift_of_hz m 3e9 in
  let multi = Arnoldi.reduce_multipoint ~points:[ (s_lo, 3); (s_hi, 3) ] m in
  let single = Arnoldi.reduce ~shift:0.0 ~order:multi.Arnoldi.order m in
  let err t =
    Simulate.Ac.max_rel_error sw (Simulate.Ac.model_sweep (Arnoldi.eval t) freqs)
  in
  let e_multi = err multi and e_single = err single in
  Alcotest.(check bool)
    (Printf.sprintf "multi %.2e <= single %.2e" e_multi e_single)
    true
    (e_multi <= e_single);
  Alcotest.(check bool) "multi accurate" true (e_multi < 1e-3)

let test_multipoint_interpolates_each_point () =
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires:2 ~sections:30 () in
  let m = Circuit.Mna.assemble_rc nl in
  let f1 = 1e7 and f2 = 1e9 in
  let multi =
    Arnoldi.reduce_multipoint
      ~points:[ (Arnoldi.shift_of_hz m f1, 2); (Arnoldi.shift_of_hz m f2, 2) ]
      m
  in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let ze = Simulate.Ac.z_at m s in
      let zm = Arnoldi.eval multi s in
      checkf (Printf.sprintf "interpolation near %g" f) ~tol:1e-5 0.0
        (Linalg.Cmat.dist_max ze zm /. Linalg.Cmat.max_abs ze))
    [ f1; f2 ]

(* ------------------------------------------------------------------ *)
(* balanced truncation                                                *)

let bt_workload () =
  (* nonsingular SPD G: a terminated bus with ground resistors *)
  let nl = Circuit.Generators.random_rc ~ports:2 ~nodes:30 ~extra_edges:25 ~seed:9 () in
  Circuit.Mna.assemble_rc nl

let test_bt_exact_at_full_order () =
  let m = bt_workload () in
  let bt = Btruncation.reduce ~order:m.Circuit.Mna.n m in
  let s = Linalg.Cx.im 1e9 in
  let ze = Simulate.Ac.z_at m s in
  let zb = Btruncation.eval bt s in
  checkf "full order exact" ~tol:1e-7 0.0
    (Linalg.Cmat.dist_max ze zb /. Linalg.Cmat.max_abs ze)

let test_bt_stable_and_bounded () =
  let m = bt_workload () in
  let bt = Btruncation.reduce ~order:6 m in
  Array.iter
    (fun p -> Alcotest.(check bool) "pole < 0" true (p < 0.0))
    (Btruncation.poles bt);
  (* the H∞ bound holds on a frequency sample *)
  let freqs = Simulate.Ac.log_freqs ~points:25 1e5 1e11 in
  let sw = Simulate.Ac.sweep m freqs in
  Array.iteri
    (fun k f ->
      ignore f;
      let d = Linalg.Cmat.dist_max sw.Simulate.Ac.z.(k) (Btruncation.eval bt (Linalg.Cx.im (2.0 *. Float.pi *. freqs.(k)))) in
      Alcotest.(check bool)
        (Printf.sprintf "bound at %g: %.2e <= %.2e" freqs.(k) d bt.Btruncation.error_bound)
        true
        (d <= bt.Btruncation.error_bound *. (1.0 +. 1e-6) +. 1e-12))
    freqs

let test_bt_hsv_descending () =
  let m = bt_workload () in
  let bt = Btruncation.reduce ~order:4 m in
  let hsv = bt.Btruncation.hsv in
  for i = 0 to Linalg.Vec.dim hsv - 2 do
    Alcotest.(check bool) "descending" true (hsv.(i) >= hsv.(i + 1) -. 1e-18)
  done

let test_bt_rejects_indefinite () =
  let nl = Circuit.Generators.rlc_line ~r_load:50.0 ~sections:4 () in
  let m = Circuit.Mna.assemble nl in
  Alcotest.(check bool) "rejects RLC" true
    (try
       ignore (Btruncation.reduce ~order:4 m);
       false
     with Btruncation.Not_definite -> true)

(* ------------------------------------------------------------------ *)
(* analytic time responses                                            *)

let test_step_response_matches_transient () =
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires:2 ~sections:10 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:10 m in
  let pr = Postprocess.of_model model in
  (* simulate the reduced model as a stamp under a sharp current step *)
  let deck = Circuit.Netlist.create () in
  let p0 = Circuit.Netlist.node deck "p0" in
  let p1 = Circuit.Netlist.node deck "p1" in
  let i0 = 1e-3 in
  Circuit.Netlist.add_current_source deck 0 p0
    (Circuit.Waveform.Pwl [ (0.0, 0.0); (1e-13, i0) ]);
  let stamp = { Simulate.Transient.model; terminals = [| (p0, 0); (p1, 0) |] } in
  let opts = Simulate.Transient.default ~dt:1e-12 ~t_stop:1e-9 in
  let res = Simulate.Transient.run ~opts ~reduced:[ stamp ] ~observe:[ p0; p1 ] deck in
  let _, wave0 = List.nth res.Simulate.Transient.voltages 0 in
  let _, wave1 = List.nth res.Simulate.Transient.voltages 1 in
  List.iter
    (fun k ->
      let t = res.Simulate.Transient.times.(k) in
      let v = Postprocess.step_response pr t in
      checkf
        (Printf.sprintf "analytic vs transient (driven) at %g" t)
        ~tol:(2e-3 *. i0 *. 150.0)
        (i0 *. Linalg.Mat.get v 0 0)
        wave0.(k);
      checkf
        (Printf.sprintf "analytic vs transient (victim) at %g" t)
        ~tol:(2e-3 *. i0 *. 150.0)
        (i0 *. Linalg.Mat.get v 1 0)
        wave1.(k))
    [ 100; 400; 900 ]

let test_impulse_is_step_derivative () =
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires:2 ~sections:8 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:8 m in
  let pr = Postprocess.of_model model in
  let t = 2e-10 and h = 1e-13 in
  let d_num =
    Linalg.Mat.scale (1.0 /. (2.0 *. h))
      (Linalg.Mat.sub (Postprocess.step_response pr (t +. h)) (Postprocess.step_response pr (t -. h)))
  in
  let d_ana = Postprocess.impulse_response pr t in
  checkf "impulse = d(step)/dt" ~tol:1e-4 0.0
    (Linalg.Mat.dist_max d_num d_ana /. Float.max (Linalg.Mat.max_abs d_ana) 1e-300)

(* ------------------------------------------------------------------ *)
(* rc_grid workload                                                   *)

let test_rc_grid_structure () =
  let nl = Circuit.Generators.rc_grid ~rows:6 ~cols:8 () in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "nodes" 48 s.Circuit.Netlist.nodes;
  (* edges: rows·(cols−1) + cols·(rows−1) + 1 ground tie *)
  Alcotest.(check int) "resistors" ((6 * 7) + (8 * 5) + 1) s.Circuit.Netlist.resistors;
  Alcotest.(check bool) "ports on boundary" true (Circuit.Netlist.port_count nl >= 4)

let test_rc_grid_reduces () =
  let nl = Circuit.Generators.rc_grid ~rows:8 ~cols:8 ~pitch_pads:7 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:12 m in
  Alcotest.(check bool) "definite" true model.Model.definite;
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e9) in
  let ze = Simulate.Ac.z_at m s in
  let zm = Model.eval model s in
  Alcotest.(check bool) "grid accuracy" true
    (Linalg.Cmat.dist_max ze zm /. Linalg.Cmat.max_abs ze < 1e-5)

let () =
  Alcotest.run "advanced"
    [
      ( "subckt",
        [
          Alcotest.test_case "expansion" `Quick test_subckt_expansion;
          Alcotest.test_case "nested" `Quick test_subckt_nested;
          Alcotest.test_case "mutual inside" `Quick test_subckt_mutual_inside;
          Alcotest.test_case "errors" `Quick test_subckt_errors;
        ] );
      ( "multipoint",
        [
          Alcotest.test_case "beats single wideband" `Quick test_multipoint_beats_single_wideband;
          Alcotest.test_case "interpolates each point" `Quick test_multipoint_interpolates_each_point;
        ] );
      ( "btruncation",
        [
          Alcotest.test_case "exact at full order" `Quick test_bt_exact_at_full_order;
          Alcotest.test_case "stable and bounded" `Quick test_bt_stable_and_bounded;
          Alcotest.test_case "hsv descending" `Quick test_bt_hsv_descending;
          Alcotest.test_case "rejects indefinite" `Quick test_bt_rejects_indefinite;
        ] );
      ( "time_response",
        [
          Alcotest.test_case "step vs transient" `Quick test_step_response_matches_transient;
          Alcotest.test_case "impulse is derivative" `Quick test_impulse_is_step_derivative;
        ] );
      ( "rc_grid",
        [
          Alcotest.test_case "structure" `Quick test_rc_grid_structure;
          Alcotest.test_case "reduces" `Quick test_rc_grid_reduces;
        ] );
    ]
