(* Tests for the simulation layer: AC sweeps against dense reference,
   transient integration against closed-form solutions, reduced-model
   stamps against full-circuit simulation. *)

module Model = Sympvl.Model
module Reduce = Sympvl.Reduce

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

let z_exact_dense (m : Circuit.Mna.t) s =
  let var =
    match m.Circuit.Mna.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let gd = Sparse.Csr.to_dense m.Circuit.Mna.g in
  let cd = Sparse.Csr.to_dense m.Circuit.Mna.c in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one gd var cd in
  let b = Linalg.Cmat.of_real m.Circuit.Mna.b in
  let z = Linalg.Cmat.mul (Linalg.Cmat.transpose b) (Linalg.Cmat.solve k b) in
  match m.Circuit.Mna.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

(* ------------------------------------------------------------------ *)
(* AC                                                                 *)

let test_ac_matches_dense_rc () =
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:100.0 ~wires:3 ~sections:6 () in
  let m = Circuit.Mna.assemble_rc nl in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z_sky = Simulate.Ac.z_at m s in
      let z_dense = z_exact_dense m s in
      checkf (Printf.sprintf "at %g Hz" f) ~tol:1e-9 0.0
        (Linalg.Cmat.dist_max z_sky z_dense /. Linalg.Cmat.max_abs z_dense))
    [ 1e6; 1e8; 1e10 ]

let test_ac_matches_dense_rlc () =
  let nl = Circuit.Generators.rlc_line ~r_load:75.0 ~sections:6 () in
  let m = Circuit.Mna.assemble nl in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 5e8) in
  let z_sky = Simulate.Ac.z_at m s in
  let z_dense = z_exact_dense m s in
  checkf "rlc skyline = dense" ~tol:1e-8 0.0
    (Linalg.Cmat.dist_max z_sky z_dense /. Linalg.Cmat.max_abs z_dense)

let test_ac_lc_two_port () =
  let nl, out_l = Circuit.Generators.peec_mesh ~segments:16 () in
  let m = Circuit.Mna.assemble_lc nl in
  let w = Circuit.Mna.observe_inductor_current nl m out_l in
  let m2 = Circuit.Mna.append_output_column m w "iout" in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1.3e9) in
  let z_sky = Simulate.Ac.z_at m2 s in
  let z_dense = z_exact_dense m2 s in
  checkf "lc two-port" ~tol:1e-8 0.0
    (Linalg.Cmat.dist_max z_sky z_dense /. Linalg.Cmat.max_abs z_dense)

let test_ac_sweep_grid () =
  let freqs = Simulate.Ac.log_freqs ~points:31 1e6 1e9 in
  Alcotest.(check int) "points" 31 (Array.length freqs);
  checkf "first" ~tol:1.0 1e6 freqs.(0);
  checkf "last" ~tol:1.0 1e9 freqs.(30);
  let nl = Circuit.Generators.rc_line ~sections:5 () in
  let m = Circuit.Mna.assemble_rc nl in
  let sw = Simulate.Ac.sweep m freqs in
  Alcotest.(check int) "z per point" 31 (Array.length sw.Simulate.Ac.z);
  (* reduced model matches the sweep everywhere *)
  let opts = { (Reduce.default ~order:8) with Reduce.band = Some (1e6, 1e9) } in
  let model = Reduce.mna ~opts ~order:8 m in
  let zm = Simulate.Ac.model_sweep (Model.eval model) freqs in
  Alcotest.(check bool) "model matches sweep" true
    (Simulate.Ac.max_rel_error sw zm < 1e-6)

(* ------------------------------------------------------------------ *)
(* Transient: closed-form checks                                      *)

(* Current step I into parallel RC: v(t) = I·R·(1 − e^{−t/RC}) *)
let test_transient_rc_step () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  let r = 1000.0 and c = 1e-9 and i0 = 1e-3 in
  Circuit.Netlist.add_resistor nl a 0 r;
  Circuit.Netlist.add_capacitor nl a 0 c;
  let tau = r *. c in
  (* a Dc source would start at its settled operating point (the run
     begins from the DC solution); a one-step ramp gives the charging
     transient the closed form describes *)
  Circuit.Netlist.add_current_source nl 0 a
    (Circuit.Waveform.Pwl [ (0.0, 0.0); (tau /. 200.0, i0) ]);
  let opts = Simulate.Transient.default ~dt:(tau /. 200.0) ~t_stop:(5.0 *. tau) in
  let res = Simulate.Transient.run ~opts ~observe:[ a ] nl in
  let _, wave = List.hd res.Simulate.Transient.voltages in
  (* the one-step ramp shifts the ideal step by rise/2 *)
  let vt k =
    let t = res.Simulate.Transient.times.(k) -. (tau /. 400.0) in
    i0 *. r *. (1.0 -. exp (-.t /. tau))
  in
  let worst = ref 0.0 in
  for k = 10 to res.Simulate.Transient.steps do
    worst := Float.max !worst (Float.abs (wave.(k) -. vt k))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rc step err %.2e" !worst)
    true
    (!worst < 2e-3 *. i0 *. r)

(* Series RL driven by current... instead: L to ground with R in
   parallel, current step: i_L(t) = I(1 − e^{−tR/L}), v = IR e^{−tR/L} *)
let test_transient_rl_step () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  let r = 50.0 and l = 1e-6 and i0 = 2e-3 in
  Circuit.Netlist.add_resistor nl a 0 r;
  Circuit.Netlist.add_inductor nl a 0 l;
  let tau = l /. r in
  (* one-step ramp: the run starts at the DC operating point, so a Dc
     source would begin settled; backward Euler damps the start-up *)
  Circuit.Netlist.add_current_source nl 0 a
    (Circuit.Waveform.Pwl [ (0.0, 0.0); (tau /. 400.0, i0) ]);
  let opts =
    {
      (Simulate.Transient.default ~dt:(tau /. 400.0) ~t_stop:(4.0 *. tau)) with
      Simulate.Transient.method_ = `Backward_euler;
    }
  in
  let res = Simulate.Transient.run ~opts ~observe:[ a ] nl in
  let _, wave = List.hd res.Simulate.Transient.voltages in
  let worst = ref 0.0 in
  for k = 10 to res.Simulate.Transient.steps do
    let expected = i0 *. r *. exp (-.res.Simulate.Transient.times.(k) /. tau) in
    worst := Float.max !worst (Float.abs (wave.(k) -. expected))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rl step err %.2e" !worst)
    true
    (!worst < 1e-2 *. i0 *. r)

let test_transient_backends_agree () =
  (* same circuit through dense (forced via reduced=[] + small) and
     skyline (larger): build a medium RC chain; run BE vs TR also *)
  let nl = Circuit.Generators.rc_line ~sections:80 () in
  let input = Circuit.Netlist.node nl "n0" in
  let out = Circuit.Netlist.node nl "n80" in
  Circuit.Netlist.add_current_source nl 0 input
    (Circuit.Waveform.ramp ~rise:1e-9 1e-3);
  let opts =
    {
      (Simulate.Transient.default ~dt:2e-11 ~t_stop:4e-9) with
      Simulate.Transient.method_ = `Backward_euler;
    }
  in
  let res_be = Simulate.Transient.run ~opts ~observe:[ out ] nl in
  Alcotest.(check bool) "skyline chosen" true
    (res_be.Simulate.Transient.backend = `Skyline);
  let opts_tr =
    { opts with Simulate.Transient.method_ = `Trapezoidal }
  in
  let res_tr = Simulate.Transient.run ~opts:opts_tr ~observe:[ out ] nl in
  (* BE is O(dt), TR is O(dt²): they agree to the BE truncation level *)
  let dev = Simulate.Transient.max_deviation res_be res_tr in
  Alcotest.(check bool) (Printf.sprintf "BE vs TR %.2e" dev) true (dev < 1e-3)

let test_transient_nonlinear_diode () =
  (* current source into a diode-like conductance: v settles where
     i_d(v) = I, i.e. v = vt·ln(1 + I/is) *)
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  let is_ = 1e-12 and vt = 0.025 in
  Circuit.Netlist.add nl
    (Circuit.Netlist.Nonlinear_conductance
       {
         name = "D1";
         n1 = a;
         n2 = 0;
         i_of_v = (fun v -> is_ *. (exp (Float.min (v /. vt) 60.0) -. 1.0));
         di_dv = (fun v -> is_ /. vt *. exp (Float.min (v /. vt) 60.0));
       });
  Circuit.Netlist.add_capacitor nl a 0 1e-12;
  let i0 = 1e-3 in
  Circuit.Netlist.add_current_source nl 0 a (Circuit.Waveform.ramp ~rise:1e-10 i0);
  let opts = Simulate.Transient.default ~dt:1e-11 ~t_stop:3e-9 in
  let res = Simulate.Transient.run ~opts ~observe:[ a ] nl in
  let _, wave = List.hd res.Simulate.Transient.voltages in
  let v_final = wave.(res.Simulate.Transient.steps) in
  let expected = vt *. log (1.0 +. (i0 /. is_)) in
  checkf "diode operating point" ~tol:1e-3 expected v_final;
  Alcotest.(check bool) "newton iterated" true
    (res.Simulate.Transient.newton_iterations > res.Simulate.Transient.steps)

(* ------------------------------------------------------------------ *)
(* Reduced-model stamp vs full circuit                                *)

let test_transient_reduced_stamp_matches_full () =
  (* drive a terminated RC bus directly, and via its reduced model
     stamped into a simulator deck; waveforms must agree *)
  let wires = 3 and sections = 10 in
  let full = Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires ~sections () in
  let drive_wave = Circuit.Waveform.ramp ~rise:2e-10 2e-3 in
  let in0 = Circuit.Netlist.node full "w0s0" in
  let in1 = Circuit.Netlist.node full "w1s0" in
  Circuit.Netlist.add_current_source full 0 in0 drive_wave;
  let opts = Simulate.Transient.default ~dt:5e-12 ~t_stop:3e-9 in
  let res_full = Simulate.Transient.run ~opts ~observe:[ in0; in1 ] full in
  (* reduced deck: ports of the bus → reduced stamp on fresh nodes *)
  let mna = Circuit.Mna.assemble_rc (Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires ~sections ()) in
  let model = Reduce.mna ~order:12 mna in
  let deck = Circuit.Netlist.create () in
  let ports =
    Array.init wires (fun w -> (Circuit.Netlist.node deck (Printf.sprintf "p%d" w), 0))
  in
  Circuit.Netlist.add_current_source deck 0 (fst ports.(0)) drive_wave;
  let stamp = { Simulate.Transient.model; terminals = ports } in
  let res_red =
    Simulate.Transient.run ~opts ~reduced:[ stamp ]
      ~observe:[ fst ports.(0); fst ports.(1) ]
      deck
  in
  Alcotest.(check bool) "dense backend for stamps" true
    (res_red.Simulate.Transient.backend = `Dense);
  let dev = Simulate.Transient.max_deviation res_full res_red in
  let scale = 2e-3 *. 150.0 in
  Alcotest.(check bool)
    (Printf.sprintf "stamp matches full, dev %.2e" dev)
    true
    (dev < 1e-3 *. scale)

let () =
  Alcotest.run "simulate"
    [
      ( "ac",
        [
          Alcotest.test_case "matches dense rc" `Quick test_ac_matches_dense_rc;
          Alcotest.test_case "matches dense rlc" `Quick test_ac_matches_dense_rlc;
          Alcotest.test_case "lc two-port" `Quick test_ac_lc_two_port;
          Alcotest.test_case "sweep grid and model" `Quick test_ac_sweep_grid;
        ] );
      ( "transient",
        [
          Alcotest.test_case "rc step closed form" `Quick test_transient_rc_step;
          Alcotest.test_case "rl step closed form" `Quick test_transient_rl_step;
          Alcotest.test_case "backends and methods agree" `Quick test_transient_backends_agree;
          Alcotest.test_case "nonlinear diode newton" `Quick test_transient_nonlinear_diode;
        ] );
      ( "reduced_stamp",
        [
          Alcotest.test_case "matches full circuit" `Quick
            test_transient_reduced_stamp_matches_full;
        ] );
    ]
