(* symor — SyMPVL model-order-reduction command line.

   Subcommands:
     info    print netlist statistics, topology class and MNA matrix
             structure (size, nonzeros, bandwidth, structural rank)
     lint    static analysis: netlist defect report with rule codes,
             severities and source-line provenance
     analyze symbolic structure analysis of the assembled pencil:
             structural rank / Dulmage–Mendelsohn solvability, exact
             fill prediction and ordering recommendation (STR codes)
     reduce  run SyMPVL, report accuracy/stability, optionally
             synthesize an equivalent reduced netlist; --check also
             audits the numerical contracts (see Sympvl.Contract)
     ac      exact AC sweep as CSV
     tran    transient simulation as CSV
     serve   persistent reduction/evaluation daemon (newline-delimited
             JSON over a Unix or TCP socket, content-hash cache,
             request batching; see README "Serving")
     request one-shot client for a running serve daemon *)

open Cmdliner

let verbose_arg =
  let doc = "Report the internal pipeline steps (factorisation fallbacks, shifts)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let netlist_arg =
  let doc = "SPICE-like netlist file (see Circuit.Parser for the grammar)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST" ~doc)

let band_arg =
  let doc = "Target band LO,HI in Hz (guides the expansion shift)." in
  Arg.(value & opt (some (pair ~sep:',' float float)) None & info [ "band" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel AC engine (default: $(b,SYMOR_JOBS) if set, \
     else the machine's recommended domain count minus one; 1 runs sequentially). \
     Results are bitwise identical at every job count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let apply_jobs = function None -> () | Some j -> Parallel.set_jobs j

let factor_arg =
  let doc =
    "Force the sparse factorisation backend: $(b,skyline) (RCM ordering + \
     envelope), $(b,supernodal) (AMD ordering + blocked panels), or $(b,auto) \
     (per-pattern plan; the default). Equivalent to $(b,SYMOR_FACTOR); the \
     flag wins. Both backends produce the same solutions to rounding; \
     $(b,symor analyze) reports what auto would pick and why."
  in
  let backend =
    Arg.enum [ ("auto", `Auto); ("skyline", `Skyline); ("supernodal", `Supernodal) ]
  in
  Arg.(value & opt (some backend) None & info [ "factor" ] ~docv:"BACKEND" ~doc)

let apply_factor = function None -> () | Some b -> Sympvl.Factor.set_backend b

let trace_arg =
  let doc =
    "Record an execution trace (spans, counters, deflation/escalation events) and \
     write it to $(docv) in Chrome-trace JSON — load it in chrome://tracing or \
     ui.perfetto.dev. Tracing never changes results: pooled sweeps stay bitwise \
     identical at every job count."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.json" ~doc)

let stats_arg =
  let doc =
    "Print an observability summary to stderr after the run: per-span call counts \
     and wall time, counters (deflations, factor nnz, flop estimates, AC points) \
     and gauges. See the README counter glossary."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* after a sanitized run (SYMOR_SAN=race,fp), recorded findings are a
   hard failure: report them in the shared diagnostic format on stderr
   and exit 2, the same contract as lint errors *)
let report_san () =
  match San.findings () with
  | [] -> ()
  | fs ->
    let ds =
      List.map
        (fun f ->
          Circuit.Diagnostic.error f.San.san_code f.San.san_message)
        fs
    in
    List.iter
      (fun d -> Format.eprintf "symor: sanitizer: %a@." Circuit.Diagnostic.pp d)
      ds;
    exit 2

(* enable tracing before the work, export/summarise after it. The
   stats table goes to stderr so it never corrupts CSV on stdout. *)
let with_obs trace stats f =
  if trace <> None || stats then Obs.enable ();
  let r = f () in
  Option.iter
    (fun path ->
      Obs.write_trace path;
      Printf.eprintf "trace written to %s\n%!" path)
    trace;
  if stats then prerr_string (Obs.stats_table ());
  (* also catches a misspelled SYMOR_SAN mode (SAN001): a run the user
     believed was sanitized but was not must not exit 0 *)
  report_san ();
  r

let order_arg =
  let doc = "Reduced order n." in
  Arg.(value & opt int 20 & info [ "n"; "order" ] ~doc)

let load path = Circuit.Parser.parse_file path

(* uniform CLI error reporting: user-level problems (bad netlists,
   unsupported element classes, singular matrices) print one line and
   exit nonzero. Only the dedicated user-facing exception types are
   caught — a bare Invalid_argument/Failure is a programming bug and
   must surface with its backtrace, not be dressed up as a user
   error. *)
let safely ?netlist f =
  try f () with
  | Circuit.Parser.Parse_error (line, msg) ->
    Printf.eprintf "symor: parse error at line %d: %s\n" line msg;
    exit 1
  | San.Violation msg ->
    (* a checked-pool race is a determinism bug, not a user error *)
    Printf.eprintf "symor: sanitizer: %s\n" msg;
    exit 2
  | Circuit.Diagnostic.User_error msg ->
    Printf.eprintf "symor: %s\n" msg;
    exit 1
  | Sys_error msg ->
    Printf.eprintf "symor: %s\n" msg;
    exit 1
  | Sympvl.Rom.Unsupported why ->
    Printf.eprintf "symor: engine does not apply to this netlist: %s\n" why;
    exit 1
  | Sympvl.Awe.Breakdown msg ->
    Printf.eprintf "symor: AWE breakdown: %s — lower --order (AWE is limited to ~8)\n" msg;
    exit 1
  | Sympvl.Mpvl.Breakdown k ->
    Printf.eprintf
      "symor: MPVL exact breakdown at step %d — perturb --shift or use --engine sympvl\n" k;
    exit 1
  | Sympvl.Factor.Singular i ->
    (* concrete recovery: recompute the automatic eq.-26 shift for this
       pencil so the message names a value that is known to regularise
       it, instead of telling the user to go guess one *)
    let hint =
      match netlist with
      | None -> "pass --band LO,HI to pick a usable expansion shift"
      | Some path -> (
        match
          Sympvl.Pencil.auto_shift (Circuit.Mna.auto (Circuit.Parser.parse_file path))
        with
        | s0 ->
          Printf.sprintf
            "retry with --shift %g (the automatic shift for this pencil) or --band LO,HI"
            s0
        | exception _ -> "pass --band LO,HI to pick a usable expansion shift")
    in
    Printf.eprintf "symor: the (shifted) G matrix is singular (pivot %d) — %s\n" i hint;
    exit 1

let class_name nl =
  match Circuit.Netlist.classify nl with
  | `Rc -> "RC"
  | `Rl -> "RL"
  | `Lc -> "LC"
  | `Rlc -> "RLC"
  | `General -> "general (nonlinear/controlled)"

(* ------------------------------------------------------------------ *)

let info_cmd =
  let run path =
   safely @@ fun () ->
    let nl = load path in
    Format.printf "%a@." Circuit.Netlist.pp_stats (Circuit.Netlist.stats nl);
    Format.printf "class: %s@." (class_name nl);
    Format.printf "ports: %s@."
      (String.concat ", "
         (List.map (fun p -> p.Circuit.Netlist.port_name) (Circuit.Netlist.ports nl)));
    if Circuit.Netlist.is_linear_rlc nl && Circuit.Netlist.port_count nl > 0 then begin
      let mna = Circuit.Mna.auto nl in
      Format.printf "MNA: %d unknowns (%d nodes), nnz(G) = %d, nnz(C) = %d@."
        mna.Circuit.Mna.n mna.Circuit.Mna.n_nodes
        (Sparse.Csr.nnz mna.Circuit.Mna.g)
        (Sparse.Csr.nnz mna.Circuit.Mna.c);
      let st = Analysis.Struct_rules.stats mna in
      Format.printf
        "structure: pattern nnz = %d, bandwidth = %d, profile = %d@."
        st.Analysis.Struct_rules.nnz_pencil st.Analysis.Struct_rules.bandwidth
        st.Analysis.Struct_rules.profile;
      Format.printf "structural rank: %d/%d%s@."
        st.Analysis.Struct_rules.struct_rank st.Analysis.Struct_rules.n
        (if st.Analysis.Struct_rules.struct_rank < st.Analysis.Struct_rules.n
         then " (SINGULAR for every element value — run symor analyze)"
         else "");
      if st.Analysis.Struct_rules.blocks > 1 then
        Format.printf "independent blocks: %d (largest %d)@."
          st.Analysis.Struct_rules.blocks
          st.Analysis.Struct_rules.largest_block;
      let ord = Analysis.Struct_rules.orderings mna in
      Format.printf
        "factor backends: RCM+skyline stores %d, AMD+supernodal %d \
         (predicted factor nnz — natural %d, RCM %d, AMD %d); plan picks %s@."
        ord.Analysis.Struct_rules.skyline_stored
        ord.Analysis.Struct_rules.supernodal_stored
        ord.Analysis.Struct_rules.natural_nnz ord.Analysis.Struct_rules.rcm_nnz
        ord.Analysis.Struct_rules.amd_nnz
        (Analysis.Struct_rules.backend_name ord.Analysis.Struct_rules.backend_pick);
      let so = Circuit.Mna.second_order_stats nl in
      Format.printf
        "second-order: %s; inductor loops = %d; coupling density = %.3f@."
        so.Circuit.Mna.chosen_form so.Circuit.Mna.inductor_loops
        so.Circuit.Mna.coupling_density
    end
  in
  let doc = "Print netlist statistics." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ netlist_arg)

let print_diagnostics ?(quiet = false) ds =
  List.iter
    (fun d ->
      if (not quiet) || d.Circuit.Diagnostic.severity <> Circuit.Diagnostic.Info then
        Format.printf "%a@." Circuit.Diagnostic.pp d)
    ds

let lint_cmd =
  let json_arg =
    let doc = "Emit the findings as a JSON array (machine-readable)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_arg =
    let doc = "Treat warnings as errors for the exit code." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let quiet_arg =
    let doc = "Suppress info-level findings in the text output." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run path json strict quiet =
   safely @@ fun () ->
    let ds = Analysis.Lint.lint_file path in
    if json then print_string (Circuit.Diagnostic.list_to_json ds ^ "\n")
    else begin
      Format.printf "%s:@." path;
      print_diagnostics ~quiet ds;
      let e = Circuit.Diagnostic.count Circuit.Diagnostic.Error ds in
      let w = Circuit.Diagnostic.count Circuit.Diagnostic.Warning ds in
      if e = 0 && w = 0 then Format.printf "clean (%d info)@."
          (Circuit.Diagnostic.count Circuit.Diagnostic.Info ds)
      else Format.printf "%d error(s), %d warning(s)@." e w
    end;
    exit (Circuit.Diagnostic.exit_code ~strict ds)
  in
  let doc =
    "Statically analyse a netlist: floating nodes, bad ports, duplicate names, \
     value and coupling defects, V/L loops and capacitor cutsets, MOR-class \
     violations, and the structural RC/RL/LC/RLC classification. Exit code: 0 \
     clean, 1 warnings only, 2 errors (or warnings under $(b,--strict))."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ netlist_arg $ json_arg $ strict_arg $ quiet_arg)

let analyze_cmd =
  let json_arg =
    let doc = "Emit the findings as a JSON array (machine-readable)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_arg =
    let doc = "Treat warnings as errors for the exit code." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let quiet_arg =
    let doc = "Suppress info-level findings in the text output." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let fill_arg =
    let doc =
      "Fill blow-up threshold for STR005: warn when the best ordering's \
       predicted factor nonzeros exceed this multiple of the pencil's \
       lower-triangle nonzeros."
    in
    Arg.(value & opt float 10.0 & info [ "fill-threshold" ] ~docv:"X" ~doc)
  in
  let run path json strict quiet fill_threshold =
   safely @@ fun () ->
    let ds = Analysis.Struct_rules.analyze_file ~fill_threshold path in
    if json then print_string (Circuit.Diagnostic.list_to_json ds ^ "\n")
    else begin
      Format.printf "%s:@." path;
      print_diagnostics ~quiet ds;
      let e = Circuit.Diagnostic.count Circuit.Diagnostic.Error ds in
      let w = Circuit.Diagnostic.count Circuit.Diagnostic.Warning ds in
      if e = 0 && w = 0 then Format.printf "structurally sound (%d info)@."
          (Circuit.Diagnostic.count Circuit.Diagnostic.Info ds)
      else Format.printf "%d error(s), %d warning(s)@." e w
    end;
    exit (Circuit.Diagnostic.exit_code ~strict ds)
  in
  let doc =
    "Symbolically analyse the assembled MNA pencil G + sC: structural rank via \
     maximum transversal (STR001), Dulmage–Mendelsohn under-/over-determined \
     blocks (STR002/STR003), DC-expansion usability (STR004), exact \
     elimination-tree fill prediction with an ordering recommendation \
     (STR005/STR006), block decoupling (STR007) and a structure summary \
     (STR008). Works on the sparsity pattern only — defects found here hold \
     for every choice of element values. Exit code: 0 sound, 1 warnings only, \
     2 errors (or warnings under $(b,--strict))."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ netlist_arg $ json_arg $ strict_arg $ quiet_arg $ fill_arg)

(* shared by `symor certify` and `symor reduce --certify`: run the
   engine-uniform certification pass and return its findings. [order]
   0 means auto: the full pencil size for the Krylov/BT engines (the
   model is then the exact transfer function and every check is a
   theorem test), AWE's documented low-order validity otherwise. *)
let certify_one ~order ~shift ~band eng (mna : Circuit.Mna.t) =
  let order =
    if order > 0 then order
    else match eng with `Awe -> 3 | _ -> mna.Circuit.Mna.n
  in
  let ctx = Sympvl.Pencil.create mna in
  let opts = { (Sympvl.Rom.default ~order) with Sympvl.Rom.shift; band } in
  let model = Sympvl.Rom.reduce ~ctx ~opts ~order eng mna in
  let drift_band = match band with Some b -> Some b | None -> (
    match eng with `Awe -> Some (1e6, 1e10) | _ -> None)
  in
  Sympvl.Certify.run ~ctx ?drift_band ~shift_requested:(shift <> None) model mna

let certify_cmd =
  let json_arg =
    let doc = "Emit the findings as a JSON array (machine-readable)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_arg =
    let doc = "Treat warnings as errors for the exit code." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let quiet_arg =
    let doc = "Suppress info-level findings in the text output." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let engine_arg =
    let doc =
      "Engine to certify: $(b,sympvl) (default), $(b,mpvl), $(b,prima), \
       $(b,awe), $(b,bt), or $(b,all) to sweep every engine that supports the \
       netlist."
    in
    Arg.(value & opt string "sympvl" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let order_arg =
    let doc =
      "Reduced order to certify (0 = auto: the full pencil size for the \
       Krylov/BT engines, so the checks become theorem tests; 3 for AWE)."
    in
    Arg.(value & opt int 0 & info [ "n"; "order" ] ~doc)
  in
  let shift_arg =
    let doc =
      "Explicit expansion shift s0. A nonzero shift leaves the certified \
       regime — MOD008 reports it."
    in
    Arg.(value & opt (some float) None & info [ "shift" ] ~docv:"S0" ~doc)
  in
  let run path engine order shift band json strict quiet jobs factor trace stats =
   safely ~netlist:path @@ fun () ->
    apply_jobs jobs;
    apply_factor factor;
    with_obs trace stats @@ fun () ->
    let engines =
      if engine = "all" then Sympvl.Rom.all
      else
        match Sympvl.Rom.of_name engine with
        | Some e -> [ e ]
        | None ->
          Printf.eprintf "symor: unknown engine %S (try --engine help)\n" engine;
          exit 1
    in
    let nl = load path in
    let mna = Circuit.Mna.auto nl in
    let findings = ref [] in
    List.iter
      (fun eng ->
        match Sympvl.Rom.supports eng mna with
        | Error why ->
          if not json then
            Format.printf "%s: skipping %s (unsupported: %s)@." (Sympvl.Rom.name eng)
              path why
        | Ok () ->
          let rep = certify_one ~order ~shift ~band eng mna in
          findings := !findings @ rep.Sympvl.Certify.findings;
          if not json then begin
            Format.printf "%s:@." (Sympvl.Rom.name eng);
            print_diagnostics ~quiet rep.Sympvl.Certify.findings;
            match rep.Sympvl.Certify.safe_order with
            | Some k -> Format.printf "  suggested safe order: %d@." k
            | None -> ()
          end)
      engines;
    let ds = !findings in
    if json then print_string (Circuit.Diagnostic.list_to_json ds ^ "\n")
    else begin
      let e = Circuit.Diagnostic.count Circuit.Diagnostic.Error ds in
      let w = Circuit.Diagnostic.count Circuit.Diagnostic.Warning ds in
      if e = 0 && w = 0 then
        Format.printf "certified clean (%d info)@."
          (Circuit.Diagnostic.count Circuit.Diagnostic.Info ds)
      else Format.printf "%d error(s), %d warning(s)@." e w
    end;
    exit (Circuit.Diagnostic.exit_code ~strict ds)
  in
  let doc =
    "Certify a reduced model (MOD001-MOD009): pole stability, the structural \
     passivity certificate, the Hamiltonian imaginary-axis passivity test \
     (locates violation bands a sampling grid misses), reciprocity, moment \
     matching against the exact pencil, DC exactness, shift-regime and drift \
     checks. Every engine goes through the same state-space adapter, so \
     $(b,--engine all) compares them uniformly. Exit code: 0 clean, 1 \
     warnings only, 2 errors (or warnings under $(b,--strict))."
  in
  Cmd.v (Cmd.info "certify" ~doc)
    Term.(
      const run $ netlist_arg $ engine_arg $ order_arg $ shift_arg $ band_arg
      $ json_arg $ strict_arg $ quiet_arg $ jobs_arg $ factor_arg $ trace_arg
      $ stats_arg)

let reduce_cmd =
  let shift_arg =
    let doc =
      "Explicit expansion shift s0 (in the pencil variable). Disables the automatic \
       singular-G retry: a singular factorisation at an explicit shift is an error."
    in
    Arg.(value & opt (some float) None & info [ "shift" ] ~docv:"S0" ~doc)
  in
  let engine_arg =
    let doc =
      "Reduction engine: $(b,sympvl) (default), $(b,mpvl), $(b,prima), $(b,sprim), \
       $(b,awe) or $(b,bt). Pass $(b,help) to list the engines with their \
       guarantees. Engines other than sympvl report size/shift and the \
       $(b,--check) accuracy figure; --adaptive and --poles stay SyMPVL-only, \
       --synth works for sympvl (RC) and sprim (RLCk)."
    in
    Arg.(value & opt string "sympvl" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let synth_arg =
    let doc = "Write a synthesized reduced netlist to $(docv)." in
    Arg.(value & opt (some string) None & info [ "synth" ] ~docv:"OUT" ~doc)
  in
  let poles_arg =
    let doc = "Print the reduced-model poles." in
    Arg.(value & flag & info [ "poles" ] ~doc)
  in
  let check_arg =
    let doc =
      "Audit the run: numerical contracts (G/C symmetry, Lanczos \
       J-orthogonality, tolerance sanity, stability/passivity certificates; \
       also enabled by $(b,SYMOR_CHECK=1)) plus accuracy against exact AC \
       analysis on the band. Contract errors exit 2."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  (* non-SyMPVL engines share one report shape: size line, shift, and
     under --check the deviation from exact AC analysis on the band.
     Unsupported engine/netlist pairs are skipped with exit 0 so a
     matrix loop over examples × engines stays a one-liner. *)
  let run_engine eng mna path ~order ~shift ~band ~check ~certify ~strict ~synth_out =
    match Sympvl.Rom.supports eng mna with
    | Error why ->
      Format.printf "%s: skipping %s (unsupported: %s)@." (Sympvl.Rom.name eng) path why
    | Ok () ->
      let opts = { (Sympvl.Rom.default ~order) with Sympvl.Rom.shift; band } in
      let model = Sympvl.Rom.reduce ~opts ~order eng mna in
      Format.printf "%s: N = %d -> n = %d (p = %d); shift s0 = %g@."
        (Sympvl.Rom.name eng) mna.Circuit.Mna.n (Sympvl.Rom.order model)
        (Sympvl.Rom.ports model) (Sympvl.Rom.shift model);
      if check then begin
        let f_lo, f_hi = match band with Some b -> b | None -> (1e6, 1e10) in
        let freqs = Simulate.Ac.log_freqs ~points:40 f_lo f_hi in
        let sw = Simulate.Ac.sweep mna freqs in
        let zm = Simulate.Ac.model_sweep (Sympvl.Rom.eval model) freqs in
        (* scalar engines (AWE) model only Z at port 0 of the exact p×p *)
        let sw =
          if Sympvl.Rom.ports model = Array.length sw.Simulate.Ac.port_names then sw
          else
            {
              sw with
              Simulate.Ac.z =
                Array.map
                  (fun z ->
                    let w = Linalg.Cmat.create 1 1 in
                    Linalg.Cmat.set w 0 0 (Linalg.Cmat.get z 0 0);
                    w)
                  sw.Simulate.Ac.z;
              port_names = [| sw.Simulate.Ac.port_names.(0) |];
            }
        in
        Format.printf "max relative error on [%g, %g] Hz: %.3e@." f_lo f_hi
          (Simulate.Ac.max_rel_error sw zm)
      end;
      let cert_exit =
        if not certify then 0
        else begin
          let rep = certify_one ~order ~shift ~band eng mna in
          Format.printf "certification:@.";
          print_diagnostics rep.Sympvl.Certify.findings;
          Circuit.Diagnostic.exit_code ~strict rep.Sympvl.Certify.findings
        end
      in
      (match synth_out with
      | None -> ()
      | Some out ->
        (match model with
        | Sympvl.Rom.Sprim_model sp ->
          let syn, st =
            Synth.Rlck.synthesize ~port_names:mna.Circuit.Mna.port_names sp
          in
          let oc = open_out out in
          output_string oc (Circuit.Parser.to_string ~precision:17 syn);
          close_out oc;
          Format.printf
            "synthesized: %d nodes, %d R, %d C, %d L (%d negative) -> %s@."
            st.Synth.Rlck.nodes st.Synth.Rlck.resistors st.Synth.Rlck.capacitors
            st.Synth.Rlck.inductors st.Synth.Rlck.negative_elements out
        | _ ->
          Printf.eprintf "symor: --synth needs --engine sympvl or sprim\n";
          exit 1))
      ;
      if cert_exit > 0 then exit cert_exit
  in
  let run verbose path order band shift engine synth_out poles check certify strict
      adaptive jobs factor trace stats =
    (if engine = "help" then begin
       List.iter
         (fun e -> Printf.printf "%-8s %s\n" (Sympvl.Rom.name e) (Sympvl.Rom.describe e))
         Sympvl.Rom.all;
       Printf.printf
         "\nEvery claim above is checkable on the model an engine actually \
          produced:\n`symor certify <netlist> --engine <name>` (or `reduce \
          --certify`) runs the\nMOD001-MOD009 certification pass.\n";
       exit 0
     end);
   safely ~netlist:path @@ fun () ->
    setup_logs verbose;
    apply_jobs jobs;
    apply_factor factor;
    with_obs trace stats @@ fun () ->
    let eng =
      match Sympvl.Rom.of_name engine with
      | Some e -> e
      | None ->
        Printf.eprintf "symor: unknown engine %S (try --engine help)\n" engine;
        exit 1
    in
    let nl = load path in
    let mna = Circuit.Mna.auto nl in
    if eng <> `Sympvl then begin
      if adaptive <> None || poles || (synth_out <> None && eng <> `Sprim) then begin
        Printf.eprintf
          "symor: --adaptive/--poles are SyMPVL-only; --synth needs --engine \
           sympvl (RC) or sprim (RLCk)\n";
        exit 1
      end;
      run_engine eng mna path ~order ~shift ~band ~check ~certify ~strict ~synth_out
    end
    else
    let opts = { (Sympvl.Reduce.default ~order) with Sympvl.Reduce.band; shift } in
    let contracts = check || Sympvl.Contract.enabled () in
    let model, contract_diags =
      match adaptive with
      | None ->
        if contracts then Sympvl.Reduce.checked ~opts ~order mna
        else (Sympvl.Reduce.mna ~opts ~order mna, [])
      | Some tol ->
        let band = match band with Some b -> b | None -> (1e6, 1e10) in
        let model, dev = Sympvl.Reduce.to_accuracy ~opts ~max_order:order ~tol ~band mna in
        Format.printf "adaptive: converged at order %d (estimate %.2e)@."
          model.Sympvl.Model.order dev;
        if contracts then
          (* replay the converged configuration through the contract
             checker: same order, shift pinned to the one the adaptive
             loop settled on. *)
          let opts = { opts with Sympvl.Reduce.shift = Some model.Sympvl.Model.shift } in
          Sympvl.Reduce.checked ~opts ~order:model.Sympvl.Model.order mna
        else (model, [])
    in
    Format.printf "SyMPVL: N = %d -> n = %d (p = %d)@." mna.Circuit.Mna.n
      model.Sympvl.Model.order model.Sympvl.Model.p;
    Format.printf "definite (J = I): %b; shift s0 = %g; deflations = %d@."
      model.Sympvl.Model.definite model.Sympvl.Model.shift
      model.Sympvl.Model.deflations;
    Format.printf "stable: %b@." (Sympvl.Stability.is_stable model);
    (match Sympvl.Stability.passivity_certificate model with
    | Sympvl.Stability.Certified -> Format.printf "passivity: certified@."
    | Sympvl.Stability.Indefinite_t x -> Format.printf "passivity: T indefinite (%g)@." x
    | Sympvl.Stability.Not_applicable ->
      Format.printf "passivity: no structural certificate@.");
    if poles then begin
      Format.printf "poles:@.";
      Array.iter
        (fun p -> Format.printf "  %+.6e %+.6ei@." p.Complex.re p.Complex.im)
        (Sympvl.Model.poles model)
    end;
    if contracts then begin
      Format.printf "contracts:@.";
      print_diagnostics contract_diags
    end;
    (if check then
       let f_lo, f_hi = match band with Some b -> b | None -> (1e6, 1e10) in
       let freqs = Simulate.Ac.log_freqs ~points:40 f_lo f_hi in
       let sw = Simulate.Ac.sweep mna freqs in
       let zm = Simulate.Ac.model_sweep (Sympvl.Model.eval model) freqs in
       Format.printf "max relative error on [%g, %g] Hz: %.3e@." f_lo f_hi
         (Simulate.Ac.max_rel_error sw zm));
    (if Circuit.Diagnostic.count Circuit.Diagnostic.Error contract_diags > 0 then begin
       Format.printf "contract violation(s) detected@.";
       exit 2
     end);
    let cert_exit =
      if not certify then 0
      else begin
        let rep =
          Sympvl.Certify.run
            ~ctx:(Sympvl.Pencil.create mna)
            ?drift_band:band
            ~shift_requested:(shift <> None)
            (Sympvl.Rom.Sympvl_model model) mna
        in
        Format.printf "certification:@.";
        print_diagnostics rep.Sympvl.Certify.findings;
        (match rep.Sympvl.Certify.safe_order with
        | Some k -> Format.printf "  suggested safe order: %d@." k
        | None -> ());
        Circuit.Diagnostic.exit_code ~strict rep.Sympvl.Certify.findings
      end
    in
    (match synth_out with
    | None -> ()
    | Some out ->
      let port_names = mna.Circuit.Mna.port_names in
      let syn, st =
        if model.Sympvl.Model.p = 1 then begin
          let n, s = Synth.Foster.synthesize model in
          ( n,
            Printf.sprintf "%d R, %d C (%d negative)" s.Synth.Foster.resistors
              s.Synth.Foster.capacitors s.Synth.Foster.negative_elements )
        end
        else begin
          let n, s = Synth.Multiport.synthesize ~port_names model in
          ( n,
            Printf.sprintf "%d nodes, %d R, %d C (%d negative)" s.Synth.Multiport.nodes
              s.Synth.Multiport.resistors s.Synth.Multiport.capacitors
              s.Synth.Multiport.negative_elements )
        end
      in
      let oc = open_out out in
      output_string oc (Circuit.Parser.to_string ~precision:17 syn);
      close_out oc;
      Format.printf "synthesized: %s -> %s@." st out);
    if cert_exit > 0 then exit cert_exit
  in
  let certify_arg =
    let doc =
      "Run the full MOD001-MOD009 certification pass on the reduced model \
       (see $(b,symor certify)); findings print under \"certification:\" and \
       escalate the exit code like a standalone certify run."
    in
    Arg.(value & flag & info [ "certify" ] ~doc)
  in
  let strict_arg =
    let doc = "With $(b,--certify): treat warnings as errors for the exit code." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let adaptive_arg =
    let doc =
      "Pick the order adaptively: grow until successive models agree to this \
       relative tolerance on the band ($(b,--order) becomes the cap)."
    in
    Arg.(value & opt (some float) None & info [ "adaptive" ] ~docv:"TOL" ~doc)
  in
  let doc = "Reduce a netlist (SyMPVL by default; see --engine for the full registry)." in
  Cmd.v (Cmd.info "reduce" ~doc)
    Term.(
      const run $ verbose_arg $ netlist_arg $ order_arg $ band_arg $ shift_arg
      $ engine_arg $ synth_arg $ poles_arg $ check_arg $ certify_arg $ strict_arg
      $ adaptive_arg $ jobs_arg $ factor_arg $ trace_arg $ stats_arg)

let ac_cmd =
  let points_arg =
    Arg.(value & opt int 100 & info [ "points" ] ~doc:"Number of frequency points.")
  in
  let flo_arg = Arg.(value & opt float 1e6 & info [ "flo" ] ~doc:"Start frequency, Hz.") in
  let fhi_arg = Arg.(value & opt float 1e10 & info [ "fhi" ] ~doc:"Stop frequency, Hz.") in
  let run path flo fhi points jobs factor trace stats =
   safely ~netlist:path @@ fun () ->
    apply_jobs jobs;
    apply_factor factor;
    with_obs trace stats @@ fun () ->
    let nl = load path in
    let mna = Circuit.Mna.auto nl in
    let freqs = Simulate.Ac.log_freqs ~points flo fhi in
    let sw = Simulate.Ac.sweep mna freqs in
    let p = Array.length sw.Simulate.Ac.port_names in
    print_string "freq";
    for i = 0 to p - 1 do
      for j = 0 to p - 1 do
        Printf.printf ",|Z_%s_%s|" sw.Simulate.Ac.port_names.(i)
          sw.Simulate.Ac.port_names.(j)
      done
    done;
    print_newline ();
    Array.iteri
      (fun k f ->
        Printf.printf "%.6e" f;
        for i = 0 to p - 1 do
          for j = 0 to p - 1 do
            Printf.printf ",%.6e" (Linalg.Cx.abs (Linalg.Cmat.get sw.Simulate.Ac.z.(k) i j))
          done
        done;
        print_newline ())
      freqs
  in
  let doc = "Exact AC sweep (CSV on stdout)." in
  Cmd.v (Cmd.info "ac" ~doc)
    Term.(
      const run $ netlist_arg $ flo_arg $ fhi_arg $ points_arg $ jobs_arg $ factor_arg
      $ trace_arg $ stats_arg)

let sparams_cmd =
  let points_arg =
    Arg.(value & opt int 100 & info [ "points" ] ~doc:"Number of frequency points.")
  in
  let flo_arg = Arg.(value & opt float 1e6 & info [ "flo" ] ~doc:"Start frequency, Hz.") in
  let fhi_arg = Arg.(value & opt float 1e10 & info [ "fhi" ] ~doc:"Stop frequency, Hz.") in
  let z0_arg = Arg.(value & opt float 50.0 & info [ "z0" ] ~doc:"Reference impedance, ohms.") in
  let run path flo fhi points z0 jobs factor trace stats =
   safely ~netlist:path @@ fun () ->
    apply_jobs jobs;
    apply_factor factor;
    with_obs trace stats @@ fun () ->
    let nl = load path in
    let mna = Circuit.Mna.auto nl in
    let freqs = Simulate.Ac.log_freqs ~points flo fhi in
    let sw = Simulate.Ac.sweep mna freqs in
    let p = Array.length sw.Simulate.Ac.port_names in
    print_string "freq";
    for i = 0 to p - 1 do
      for j = 0 to p - 1 do
        Printf.printf ",|S%d%d|,arg(S%d%d)" (i + 1) (j + 1) (i + 1) (j + 1)
      done
    done;
    print_newline ();
    Array.iteri
      (fun k f ->
        let s = Simulate.Netparams.z_to_s ~z0 sw.Simulate.Ac.z.(k) in
        Printf.printf "%.6e" f;
        for i = 0 to p - 1 do
          for j = 0 to p - 1 do
            let v = Linalg.Cmat.get s i j in
            Printf.printf ",%.6e,%.6e" (Linalg.Cx.abs v) (Complex.arg v)
          done
        done;
        print_newline ())
      freqs
  in
  let doc = "Exact S-parameter sweep (CSV on stdout)." in
  Cmd.v (Cmd.info "sparams" ~doc)
    Term.(
      const run $ netlist_arg $ flo_arg $ fhi_arg $ points_arg $ z0_arg $ jobs_arg
      $ factor_arg $ trace_arg $ stats_arg)

let tran_cmd =
  let dt_arg = Arg.(value & opt float 1e-11 & info [ "dt" ] ~doc:"Time step, s.") in
  let tstop_arg = Arg.(value & opt float 1e-8 & info [ "tstop" ] ~doc:"Stop time, s.") in
  let observe_arg =
    let doc = "Comma-separated node names to record." in
    Arg.(required & opt (some (list string)) None & info [ "observe" ] ~doc)
  in
  let run path dt tstop observe factor =
   safely ~netlist:path @@ fun () ->
    apply_factor factor;
    let nl = load path in
    let nodes = List.map (Circuit.Netlist.node nl) observe in
    let opts = Simulate.Transient.default ~dt ~t_stop:tstop in
    let res = Simulate.Transient.run ~opts ~observe:nodes nl in
    Printf.printf "time,%s\n" (String.concat "," observe);
    Array.iteri
      (fun k t ->
        Printf.printf "%.6e" t;
        List.iter
          (fun (_, wave) -> Printf.printf ",%.6e" wave.(k))
          res.Simulate.Transient.voltages;
        print_newline ())
      res.Simulate.Transient.times
  in
  let doc = "Transient simulation (CSV on stdout)." in
  Cmd.v (Cmd.info "tran" ~doc)
    Term.(const run $ netlist_arg $ dt_arg $ tstop_arg $ observe_arg $ factor_arg)

(* ------------------------------------------------------------------ *)
(* serve / request: the daemon and its one-shot client                 *)

let socket_arg =
  let doc = "Serve on (or connect to) a Unix socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Serve on (or connect to) TCP port $(docv)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"N" ~doc)

let host_arg =
  let doc = "Host for $(b,--port) (bind address / connect target)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let resolve_addr socket port host : Serve.Protocol.addr =
  match (socket, port) with
  | Some path, None -> `Unix path
  | None, Some p -> `Tcp (host, p)
  | Some _, Some _ ->
    Printf.eprintf "symor: --socket and --port are mutually exclusive\n";
    exit 2
  | None, None ->
    Printf.eprintf "symor: pass --socket PATH or --port N\n";
    exit 2

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let serve_cmd =
  let entries_arg =
    let doc =
      "Cache bound: distinct netlists kept resident (parsed netlist, shared \
       pencil context, reduced models, evaluated AC points). Least recently \
       used entries are evicted past the bound; entries pinned by an in-flight \
       request are dropped only once it completes."
    in
    Arg.(value & opt int 64 & info [ "cache-entries" ] ~docv:"N" ~doc)
  in
  let run socket port host entries jobs factor stats =
   safely @@ fun () ->
    apply_jobs jobs;
    apply_factor factor;
    let addr = resolve_addr socket port host in
    let cfg =
      { (Serve.Server.default_config addr) with Serve.Server.max_entries = entries }
    in
    (* the daemon records its spans/counters so /stats and per-request
       "trace":true subtrees have data; buffers are truncated per batch *)
    Serve.Server.run
      ~on_ready:(fun () ->
        Printf.eprintf "symor: serving on %s\n%!" (addr_to_string addr))
      cfg;
    if stats then prerr_string (Obs.stats_table ());
    report_san ()
  in
  let doc =
    "Persistent reduction/evaluation daemon. Speaks newline-delimited JSON \
     (one request per line, one response per line — malformed lines \
     included) over a Unix or TCP socket. Caches netlist -> parsed -> pencil \
     context -> reduced model by content hash; concurrent AC requests for \
     the same netlist are batched into one pooled sweep. SIGTERM (or a \
     $(b,shutdown) request) drains in-flight requests, then exits 0. See \
     README \"Serving\" for the protocol."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ entries_arg $ jobs_arg
      $ factor_arg $ stats_arg)

let request_cmd =
  let lines_arg =
    let doc =
      "Request lines (JSON objects) to send, in order. Without positional \
       requests, lines are read from stdin. Lines are forwarded verbatim — \
       including malformed ones, which the daemon answers with a structured \
       error."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST" ~doc)
  in
  let timeout_arg =
    let doc = "Seconds to keep retrying the initial connection." in
    Arg.(value & opt float 10.0 & info [ "connect-timeout" ] ~docv:"S" ~doc)
  in
  let run socket port host timeout lines =
   safely @@ fun () ->
    let addr = resolve_addr socket port host in
    let c = Serve.Client.connect ~deadline_s:timeout addr in
    let lines =
      if lines <> [] then lines
      else
        let rec slurp acc =
          match input_line stdin with
          | line -> slurp (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        slurp []
    in
    (* exit with the worst per-response "status" (the daemon's 0/1/2
       contract); an unreadable response counts as an error *)
    let worst = ref 0 in
    List.iter
      (fun line ->
        match Serve.Client.request c line with
        | None ->
          Printf.eprintf "symor: connection closed by daemon\n";
          worst := 2
        | Some resp ->
          print_endline resp;
          let status =
            match Serve.Json.parse resp with
            | j -> (
              match Serve.Json.to_int_opt (Serve.Json.member "status" j) with
              | Some s -> s
              | None -> 2)
            | exception Serve.Json.Parse_error _ -> 2
          in
          if status > !worst then worst := status)
      lines;
    Serve.Client.close c;
    exit !worst
  in
  let doc =
    "Send request lines to a running $(b,symor serve) daemon and print the \
     response lines. Exit code is the worst $(b,status) field across the \
     responses (the daemon's 0/1/2 contract)."
  in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(const run $ socket_arg $ port_arg $ host_arg $ timeout_arg $ lines_arg)

let () =
  Printexc.record_backtrace true;
  let doc = "SyMPVL reduced-order modeling of linear passive multi-ports" in
  let main = Cmd.group (Cmd.info "symor" ~version:"1.0.0" ~doc)
      [ info_cmd; lint_cmd; analyze_cmd; reduce_cmd; certify_cmd; ac_cmd; sparams_cmd;
        tran_cmd; serve_cmd; request_cmd ]
  in
  exit (Cmd.eval main)
